// Package workload defines the 22 SPECcpu2000 benchmark models of the
// paper's Table 2 — ten SPECint2000 and twelve SPECfp2000 programs (252.eon,
// 181.mcf, 178.galgel and 200.sixtrack were excluded by the paper for EIO
// trace problems, and are excluded here for fidelity).
//
// Each benchmark is a synthetic program (package program) calibrated to the
// paper's published characteristics:
//
//   - dynamic conditional and unconditional branch frequencies (Table 2),
//     via the basic-block length and terminator mix;
//   - direction-prediction accuracy under bimodal-16K and gshare-16K
//     (Table 2), via a branch-behaviour mixture solved analytically from
//     those two targets (see solveMix);
//   - relative IPC and memory-boundedness (Figures 5b/8b), via data-region
//     footprints and dependence density.
//
// The mixture solver works over four behaviour components with known
// approximate accuracies under the two reference predictors:
//
//	component            bimodal-16K   gshare-16K
//	biased (p=0.995)        0.995         0.995
//	loop   (trip ~49)       0.98          0.98
//	correlated (span<=10)   0.50          0.93
//	local pattern           0.65          0.88
//	random                  0.50          0.50
//
// Given Table 2 targets (b, g), the correlated weight carries the b-to-g
// gap, the biased+loop group carries the level, and random fills the rest.
package workload

import (
	"fmt"

	"bpredpower/internal/program"
)

// Suite labels a benchmark's SPEC suite.
type Suite uint8

const (
	// SPECint is the integer suite.
	SPECint Suite = iota
	// SPECfp is the floating-point suite.
	SPECfp
)

// String returns the suite name.
func (s Suite) String() string {
	if s == SPECint {
		return "SPECint2000"
	}
	return "SPECfp2000"
}

// Benchmark is one calibrated workload.
type Benchmark struct {
	// Name is the SPEC program name, e.g. "164.gzip".
	Name string
	// Suite is the benchmark's SPEC suite.
	Suite Suite
	// Spec is the fully instantiated program generator spec.
	Spec program.Spec

	// Paper-reported targets (Table 2), retained for calibration checks and
	// for EXPERIMENTS.md's paper-vs-measured records.
	PaperCondFreq   float64
	PaperUncondFreq float64
	PaperBimod16K   float64
	PaperGshare16K  float64
}

// Program generates the benchmark's static program image.
func (b Benchmark) Program() *program.Program { return program.MustGenerate(b.Spec) }

// memProfile shapes a benchmark's data-reference behaviour, the lever for
// its IPC and memory-boundedness.
type memProfile struct {
	regions   []program.MemRegion
	loadFrac  float64
	storeFrac float64
	depMean   float64
}

// Standard memory profiles. Footprints are chosen against the Table 1
// hierarchy: 64KB L1, 2MB L2.
var (
	// memCacheFriendly fits L1: high IPC.
	memCacheFriendly = memProfile{
		regions:  []program.MemRegion{{Size: 40 << 10, Stride: 8}},
		loadFrac: 0.24, storeFrac: 0.10, depMean: 2.2,
	}
	// memModerate spills L1 lightly into L2.
	memModerate = memProfile{
		regions: []program.MemRegion{
			{Size: 40 << 10, Stride: 8},
			{Size: 512 << 10, Stride: 8, RandomFrac: 0.002},
		},
		loadFrac: 0.26, storeFrac: 0.10, depMean: 2.2,
	}
	// memPoor works a large L2-resident set with occasional memory misses:
	// low IPC.
	memPoor = memProfile{
		regions: []program.MemRegion{
			{Size: 16 << 10, Stride: 8},
			{Size: 16 << 10, Stride: 8},
			{Size: 16 << 10, Stride: 8},
			{Size: 1536 << 10, Stride: 8, RandomFrac: 0.001},
		},
		loadFrac: 0.28, storeFrac: 0.11, depMean: 3,
	}
	// memBound misses all the way to memory constantly (art-like).
	memBound = memProfile{
		regions: []program.MemRegion{
			{Size: 16 << 10, Stride: 8},
			{Size: 8 << 20, Stride: 128, RandomFrac: 0.05},
		},
		loadFrac: 0.32, storeFrac: 0.08, depMean: 3,
	}
)

// behaviour-component accuracy constants used by solveMix (see package doc).
const (
	accBiased = 0.995
	accCorrB  = 0.50
	accCorrG  = 0.93
	accPatB   = 0.65
	accPatG   = 0.88
	accRand   = 0.50
)

// solveMix derives a behaviour mixture hitting the Table 2 accuracy targets
// (bim under bimodal-16K, gsh under gshare-16K).
//
// The solve works in *dynamic* weights — fractions of executed conditional
// branches — and then converts the loop component to its static site count:
// a self-loop site with trip count k executes k times per traversal while
// every other site executes once, so a desired dynamic loop share lambda
// needs only lambda/(k - lambda(k-1)) of the static sites.
//
// patW carves a local-pattern share (for PAs differentiation), loopShare is
// the desired *dynamic* loop share, histSpan bounds correlation depth (kept
// small so the reference predictors can actually learn the parity function
// within realistic PHT capacity), and trip is the per-site loop trip count.
func solveMix(bim, gsh, patW, loopShare float64, histSpan int, trip float64) ([]program.BehaviorWeight, *program.MixTargets) {
	if gsh < bim {
		gsh = bim
	}
	if trip < 2 {
		trip = 2
	}
	accLoop := trip / (trip + 1) // a 2-bit counter (or any predictor with
	// insufficient history) mispredicts exactly the exit

	// Correlated weight carries the bim-to-gshare gap not explained by the
	// pattern component.
	wC := (gsh - bim - patW*(accPatG-accPatB)) / (accCorrG - accCorrB)
	if wC < 0 {
		wC = 0
	}
	if wC > 0.6 {
		wC = 0.6
	}
	lam := loopShare
	if lam+2*wC+patW > 0.95 {
		lam = 0.95 - 2*wC - patW
	}
	if lam < 0 {
		lam = 0
	}
	// Each correlated *repeater* site comes with an unpredictable *source*
	// site (see program.placeCorrelatedPair), so a correlated share wC
	// claims 2*wC of the dynamic mixture, both halves contributing ~0.5
	// accuracy under bimodal. Level equation over dynamic weights:
	//   bim = accBiased*wB + accLoop*lam + accPatB*patW + accCorrB*2*wC + accRand*wR
	// with wB + wR = 1 - lam - 2*wC - patW.
	rest := 1 - lam - 2*wC - patW
	wB := (bim - accLoop*lam - accCorrB*2*wC - accPatB*patW - accRand*rest) / (accBiased - accRand)
	if wB < 0 {
		wB = 0
	}
	if wB > rest {
		wB = rest
	}
	wR := rest - wB

	// Dynamic -> static: shrink the loop share by its execution
	// amplification, and renormalize the rest.
	sLoop := lam / (trip - lam*(trip-1))
	scale := (1 - sLoop) / (1 - lam)
	if lam >= 1 {
		scale = 0
	}

	static := []program.BehaviorWeight{
		{Kind: program.BehaviorBiased, Weight: wB * scale, PTaken: accBiased},
		{Kind: program.BehaviorLoop, Weight: sLoop, TripMean: trip},
		// Slight oversupply of correlated pairs: the closed-loop calibration
		// can trim surplus pairs but cannot mint new ones.
		{Kind: program.BehaviorGlobalCorrelated, Weight: wC * scale * 2.5, HistSpan: histSpan},
		{Kind: program.BehaviorLocalPattern, Weight: patW * scale, PatternMaxLen: 6},
		{Kind: program.BehaviorRandom, Weight: wR * scale},
	}
	// Closed-loop targets for the executed stream: the correlated pair
	// sources are random sites, so the random target absorbs wC.
	mix := &program.MixTargets{
		Biased:        wB,
		Loop:          lam,
		Correlated:    wC,
		Pattern:       patW,
		Random:        wR + wC,
		PTaken:        accBiased,
		Trip:          int(trip + 0.5),
		PatternMaxLen: 6,
	}
	return static, mix
}

// build assembles one benchmark from Table 2 numbers and structural knobs.
func build(name string, suite Suite, seed uint64,
	condFreq, uncondFreq, bim16k, gsh16k float64,
	patW, loopShare float64, histSpan int, trip float64,
	mem memProfile, numBlocks, numFuncs int) Benchmark {

	// Mean block length sets the control-instruction density: one control
	// instruction per 1/(cond+uncond) instructions.
	ctlFreq := condFreq + uncondFreq
	if ctlFreq < 0.016 {
		ctlFreq = 0.016 // generator blocks are capped at 64 instructions
	}
	meanBlock := 1 / ctlFreq
	if meanBlock > 60 {
		meanBlock = 60
	}
	condFrac := condFreq * meanBlock
	if condFrac > 0.92 {
		condFrac = 0.92
	}
	// Split the unconditional share between calls (each also implying a
	// dynamic return) and jumps. The 2.5x factor compensates dynamic
	// dilution: loop iterations and pair filler blocks execute many
	// instructions without unconditional transfers, so the static share
	// must exceed the dynamic target.
	callFrac := 2.5 * uncondFreq * meanBlock / 4
	jumpFrac := 2.5*uncondFreq*meanBlock - 2*callFrac
	if jumpFrac < 0.01 {
		jumpFrac = 0.01
	}
	static, mix := solveMix(bim16k, gsh16k, patW, loopShare, histSpan, trip)

	return Benchmark{
		Name:  name,
		Suite: suite,
		Spec: program.Spec{
			Name:         name,
			Seed:         seed,
			NumBlocks:    numBlocks,
			NumFuncs:     numFuncs,
			MeanBlockLen: meanBlock,
			CondFrac:     condFrac,
			JumpFrac:     jumpFrac,
			CallFrac:     callFrac,
			LoadFrac:     mem.loadFrac,
			StoreFrac:    mem.storeFrac,
			FPFrac:       fpFracFor(suite),
			MultFrac:     0.04,
			DivFrac:      0.004,
			DepMean:      mem.depMean,
			Behaviors:    static,
			Regions:      mem.regions,
			Mix:          mix,
		},
		PaperCondFreq:   condFreq,
		PaperUncondFreq: uncondFreq,
		PaperBimod16K:   bim16k,
		PaperGshare16K:  gsh16k,
	}
}

func fpFracFor(s Suite) float64 {
	if s == SPECfp {
		return 0.40
	}
	return 0.03
}

// SPECint2000 returns the ten integer benchmarks of Table 2.
func SPECint2000() []Benchmark {
	return []Benchmark{
		build("164.gzip", SPECint, 164, 0.0673, 0.0305, 0.8587, 0.9106, 0.06, 0.20, 8, 18, memCacheFriendly, 500, 8),
		build("175.vpr", SPECint, 175, 0.0841, 0.0266, 0.8496, 0.8627, 0.05, 0.18, 8, 16, memPoor, 550, 8),
		build("176.gcc", SPECint, 176, 0.0429, 0.0077, 0.9203, 0.9351, 0.05, 0.18, 8, 18, memModerate, 1600, 20),
		build("186.crafty", SPECint, 186, 0.0834, 0.0279, 0.8588, 0.9201, 0.06, 0.20, 8, 18, memCacheFriendly, 600, 9),
		build("197.parser", SPECint, 197, 0.1064, 0.0478, 0.8537, 0.9192, 0.06, 0.18, 8, 16, memPoor, 700, 10),
		build("253.perlbmk", SPECint, 253, 0.0964, 0.0436, 0.8810, 0.9125, 0.05, 0.18, 8, 16, memModerate, 900, 12),
		build("254.gap", SPECint, 254, 0.0541, 0.0141, 0.8659, 0.9418, 0.06, 0.20, 8, 18, memCacheFriendly, 700, 10),
		build("255.vortex", SPECint, 255, 0.1022, 0.0573, 0.9658, 0.9666, 0.03, 0.20, 8, 18, memCacheFriendly, 1000, 14),
		build("256.bzip2", SPECint, 256, 0.1141, 0.0169, 0.9181, 0.9222, 0.04, 0.20, 8, 18, memModerate, 450, 6),
		build("300.twolf", SPECint, 300, 0.1023, 0.0195, 0.8320, 0.8699, 0.06, 0.18, 8, 16, memPoor, 600, 8),
	}
}

// SPECfp2000 returns the twelve floating-point benchmarks of Table 2.
func SPECfp2000() []Benchmark {
	return []Benchmark{
		build("168.wupwise", SPECfp, 168, 0.0787, 0.0202, 0.9038, 0.9662, 0.04, 0.30, 6, 40, memCacheFriendly, 400, 6),
		build("171.swim", SPECfp, 171, 0.0129, 0.00005, 0.9931, 0.9968, 0.01, 0.50, 3, 160, memModerate, 500, 6),
		build("172.mgrid", SPECfp, 172, 0.0028, 0.00004, 0.9462, 0.9700, 0.02, 0.45, 3, 24, memCacheFriendly, 500, 6),
		build("173.applu", SPECfp, 173, 0.0042, 0.0001, 0.8871, 0.9895, 0.03, 0.30, 8, 16, memModerate, 500, 6),
		build("177.mesa", SPECfp, 177, 0.0583, 0.0291, 0.9068, 0.9331, 0.04, 0.30, 6, 20, memCacheFriendly, 600, 8),
		build("179.art", SPECfp, 179, 0.1091, 0.0039, 0.9295, 0.9639, 0.03, 0.35, 6, 30, memBound, 600, 8),
		build("183.equake", SPECfp, 183, 0.1066, 0.0651, 0.9698, 0.9816, 0.02, 0.35, 6, 50, memModerate, 800, 10),
		build("187.facerec", SPECfp, 187, 0.0245, 0.0103, 0.9758, 0.9870, 0.02, 0.40, 6, 80, memCacheFriendly, 400, 6),
		build("188.ammp", SPECfp, 188, 0.1951, 0.0269, 0.9767, 0.9831, 0.02, 0.35, 6, 80, memPoor, 450, 6),
		build("189.lucas", SPECfp, 189, 0.0074, 0.00003, 0.9998, 0.9998, 0.0, 0.50, 3, 400, memCacheFriendly, 500, 6),
		build("191.fma3d", SPECfp, 191, 0.1309, 0.0425, 0.9200, 0.9291, 0.04, 0.30, 6, 20, memModerate, 700, 10),
		build("300.apsi", SPECfp, 300^0xff, 0.0212, 0.0051, 0.9524, 0.9878, 0.03, 0.35, 6, 40, memCacheFriendly, 800, 10),
	}
}

// All returns every benchmark, integer suite first.
func All() []Benchmark { return append(SPECint2000(), SPECfp2000()...) }

// Subset7 returns the seven integer benchmarks Section 4 uses for the
// banking, PPD, and gating studies: gzip, vpr, gcc, crafty, parser, gap,
// vortex ("chosen ... to reduce overall simulation times but maintain a
// representative mix of branch-prediction behavior").
func Subset7() []Benchmark {
	want := map[string]bool{
		"164.gzip": true, "175.vpr": true, "176.gcc": true, "186.crafty": true,
		"197.parser": true, "254.gap": true, "255.vortex": true,
	}
	var out []Benchmark
	for _, b := range SPECint2000() {
		if want[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named benchmark from either suite.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the names of the given benchmarks.
func Names(bs []Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}
