package bpredpower

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"testing"

	"bpredpower/internal/array"
	"bpredpower/internal/atime"
	"bpredpower/internal/bpred"
	"bpredpower/internal/cpu"
	"bpredpower/internal/experiments"
	"bpredpower/internal/gating"
	"bpredpower/internal/power"
	"bpredpower/internal/ppd"
	"bpredpower/internal/trace"
	"bpredpower/internal/workload"
)

// The benchmarks below regenerate each of the paper's tables and figures
// (writing the rows to io.Discard; run cmd/bpexperiments to see them).
// They use the Quick run configuration so `go test -bench=.` finishes in
// minutes; cmd/bpexperiments uses the full windows.
//
// A fresh harness per iteration makes b.N iterations measure full
// regeneration cost, not cache hits.

// benchParallel sets the figure benchmarks' simulation worker count.
// (Named -experiments.parallel because go test claims -parallel itself.)
var benchParallel = flag.Int("experiments.parallel", 0,
	"figure-benchmark simulation workers (0 = GOMAXPROCS)")

func benchHarness() *experiments.Harness {
	h := experiments.NewHarness(experiments.Quick)
	h.Parallel = *benchParallel
	return h
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3(io.Discard)
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure6(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure7(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure8(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure9(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure10(benchHarness(), io.Discard)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard)
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure11(io.Discard)
	}
}

func BenchmarkFigures12And13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figures12And13(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure14(benchHarness(), io.Discard)
	}
}

func BenchmarkFigures16And17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figures16And17(benchHarness(), io.Discard)
	}
}

func BenchmarkFigure19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure19(benchHarness(), io.Discard)
	}
}

// --- Microbenchmarks and ablations -------------------------------------

// BenchmarkSimulatorThroughput measures raw simulation speed in committed
// instructions per second (reported as ns/inst).
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, err := workload.ByName("164.gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := bench.Program()
	sim := cpu.MustNew(p, cpu.Options{Predictor: bpred.Hybrid1})
	sim.Run(20000) // warm
	b.ReportAllocs()
	b.ResetTimer()
	sim.Run(uint64(b.N))
}

// BenchmarkSimulatorStep measures one full pipeline cycle (fetch through
// commit plus power fold) on a warm machine — the per-cycle cost that
// BenchmarkSimulatorThroughput amortizes over committed instructions.
func BenchmarkSimulatorStep(b *testing.B) {
	bench, err := workload.ByName("164.gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := bench.Program()
	sim := cpu.MustNew(p, cpu.Options{Predictor: bpred.Hybrid1})
	sim.Run(20000) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.StepCycle()
	}
}

// BenchmarkMeterEndCycle measures the per-cycle power fold under each
// accounting mode: deferred is the integer-only kernel, percycle is the
// eager reference fold (the pre-kernel behavior), crosscheck runs both.
// The meter mirrors the real machine's unit count, with about a third of
// the units active per cycle.
func BenchmarkMeterEndCycle(b *testing.B) {
	for _, mode := range []power.AccountingMode{power.AccountDeferred, power.AccountPerCycle, power.AccountCrossCheck} {
		b.Run(mode.String(), func(b *testing.B) {
			m := power.NewMeter(1.25e-9)
			m.Accounting = mode
			units := make([]*power.Unit, 34)
			for i := range units {
				units[i] = m.Add(power.NewFixedUnit(fmt.Sprintf("u%02d", i), power.GroupALU, 1e-10, 2))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < len(units); j += 3 {
					units[j].Read(1)
				}
				m.EndCycle()
			}
			b.StopTimer()
			if m.TotalEnergy() <= 0 {
				b.Fatal("meter accumulated no energy")
			}
		})
	}
}

// BenchmarkPredictorLookup measures a single hybrid lookup+update round.
func BenchmarkPredictorLookup(b *testing.B) {
	for _, spec := range []bpred.Spec{bpred.Bim4k, bpred.Gsh16k12, bpred.PAs4k16k8, bpred.Hybrid1} {
		b.Run(spec.Name, func(b *testing.B) {
			p := spec.Build()
			var pr bpred.Prediction // hoisted so &pr does not escape per iteration
			for i := 0; i < b.N; i++ {
				pc := uint64(i*4) & 0xffff
				pr = p.Lookup(pc)
				p.Update(&pr, i&3 != 0)
			}
		})
	}
}

// Ablation: the cost of the column-decoder extension (old vs new model) on
// a full simulation — the modelling choice behind Figure 2.
func BenchmarkAblationColumnDecoder(b *testing.B) {
	bench, _ := workload.ByName("164.gzip")
	p := bench.Program()
	for _, old := range []bool{false, true} {
		name := "newModel"
		if old {
			name = "oldModel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := cpu.MustNew(p, cpu.Options{Predictor: bpred.Gsh16k12, OldArrayModel: old})
				sim.Run(30000)
			}
		})
	}
}

// Ablation: squarification strategy (closest-square vs min-EDP), the
// modelling choice behind Figure 3.
func BenchmarkAblationSquarify(b *testing.B) {
	am := array.NewModel()
	tm := atime.New()
	s := array.Spec{Entries: 32768, Width: 2, OutBits: 2}
	b.Run("closestSquare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = array.ChooseClosestSquare(s)
		}
	})
	b.Run("minEDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = array.ChooseMinEDP(am, s, tm.Delay)
		}
	})
}

// Ablation: speculative history update + repair vs the simpler model —
// exercised by running the full pipeline, where Unwind/Redirect dominate
// squash cost.
func BenchmarkAblationPPDScenarios(b *testing.B) {
	bench, _ := workload.ByName("254.gap")
	p := bench.Program()
	for _, sc := range []ppd.Scenario{ppd.Off, ppd.Scenario1, ppd.Scenario2} {
		b.Run(sc.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := cpu.MustNew(p, cpu.Options{Predictor: bpred.GAs32k8, PPD: sc})
				sim.Run(30000)
			}
		})
	}
}

// Ablation: pipeline-gating thresholds on the poor hybrid.
func BenchmarkAblationGating(b *testing.B) {
	bench, _ := workload.ByName("197.parser")
	p := bench.Program()
	for n := 0; n <= 2; n++ {
		b.Run(map[int]string{0: "N0", 1: "N1", 2: "N2"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := cpu.MustNew(p, cpu.Options{Predictor: bpred.Hybrid0,
					Gating: gating.Config{Enabled: true, Threshold: n}})
				sim.Run(30000)
			}
		})
	}
}

// BenchmarkProgramGeneration measures synthetic benchmark generation
// including closed-loop mixture calibration.
func BenchmarkProgramGeneration(b *testing.B) {
	bench, _ := workload.ByName("164.gzip")
	for i := 0; i < b.N; i++ {
		_ = bench.Program()
	}
}

// Ablation: Wattch conditional-clocking styles (cc0-cc3); the paper's
// results all use cc3.
func BenchmarkAblationClockGating(b *testing.B) {
	bench, _ := workload.ByName("164.gzip")
	p := bench.Program()
	for _, style := range []power.GatingStyle{power.CC0, power.CC1, power.CC2, power.CC3} {
		b.Run(style.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := cpu.MustNew(p, cpu.Options{Predictor: bpred.Gsh16k12, ClockGating: style})
				sim.Run(30000)
			}
		})
	}
}

// Ablation: per-active-cycle vs per-branch predictor lookup charging — the
// fetch-engine accounting decision the paper's simulator extension makes.
func BenchmarkAblationLookupCharging(b *testing.B) {
	bench, _ := workload.ByName("164.gzip")
	p := bench.Program()
	for _, perBranch := range []bool{false, true} {
		name := "perActiveCycle"
		if perBranch {
			name = "perBranch"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := cpu.MustNew(p, cpu.Options{Predictor: bpred.Gsh16k12, ChargeLookupsPerBranch: perBranch})
				sim.Run(30000)
			}
		})
	}
}

// BenchmarkTraceEval measures sim-bpred-style trace evaluation throughput.
func BenchmarkTraceEval(b *testing.B) {
	bench, _ := workload.ByName("164.gzip")
	var buf bytes.Buffer
	if _, err := trace.Record(bench.Program(), 200000, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Eval(bytes.NewReader(data), bpred.Hybrid1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionConfidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtensionConfidence(benchHarness(), io.Discard)
	}
}

func BenchmarkExtensionLinePredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtensionLinePredictor(benchHarness(), io.Discard)
	}
}
