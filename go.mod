module bpredpower

go 1.22
