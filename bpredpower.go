// Package bpredpower is a cycle-level power/performance simulation library
// reproducing "Power Issues Related to Branch Prediction" (Parikh, Skadron,
// Zhang, Barcella, Stan — HPCA 2002 / UVa TR CS-2001-25).
//
// It provides, from scratch and with no external dependencies:
//
//   - the dynamic branch predictors the paper studies (bimodal, GAs, gshare,
//     PAs, and McFarling hybrids) in the paper's fourteen configurations,
//     with speculative history update and repair;
//   - an Alpha 21264-like out-of-order, cycle-level processor model
//     (8-stage pipeline, 80-entry RUU, 40-entry LSQ, 6-wide issue, the
//     Table 1 cache hierarchy) that fetches down predicted paths and
//     simulates mis-speculated execution;
//   - a Wattch-style activity-based power model with the paper's
//     extensions: explicit column decoders, min-energy-delay
//     squarification, banking, and cc3 conditional clocking;
//   - the paper's proposed structures: the prediction probe detector (PPD)
//     in both timing scenarios, predictor banking, and pipeline gating with
//     "both strong" confidence estimation;
//   - calibrated synthetic models of the 22 SPECcpu2000 benchmarks of the
//     paper's Table 2;
//   - an experiment harness that regenerates every data table and figure in
//     the paper's evaluation.
//
// # Quickstart
//
//	bench, _ := bpredpower.BenchmarkByName("164.gzip")
//	sim := bpredpower.NewSimulator(bench, bpredpower.Options{
//		Predictor: bpredpower.Hybrid1, // the Alpha 21264 predictor
//	})
//	sim.Run(200000)                    // warm up
//	sim.ResetMeasurement()
//	sim.Run(200000)                    // measure
//	fmt.Printf("IPC %.2f, accuracy %.2f%%, chip %.1f W, predictor %.2f W\n",
//		sim.Stats().IPC(), 100*sim.Stats().DirAccuracy(),
//		sim.Meter().AveragePower(), sim.Meter().PredictorPower())
//
// See the examples directory for runnable programs and DESIGN.md for the
// system inventory and per-experiment index.
package bpredpower

import (
	"bpredpower/internal/bpred"
	"bpredpower/internal/config"
	"bpredpower/internal/cpu"
	"bpredpower/internal/experiments"
	"bpredpower/internal/gating"
	"bpredpower/internal/power"
	"bpredpower/internal/ppd"
	"bpredpower/internal/program"
	"bpredpower/internal/workload"
)

// Core simulation types.
type (
	// Options selects the machine variant: predictor configuration,
	// banking, PPD scenario, pipeline gating, and power-model options.
	Options = cpu.Options
	// Simulator is a cycle-level out-of-order processor simulation bound to
	// one program.
	Simulator = cpu.Sim
	// Stats are the simulation statistics (IPC, prediction accuracy,
	// inter-branch distances, pipeline event counts).
	Stats = cpu.Stats
	// Meter is the cycle-by-cycle power accountant.
	Meter = power.Meter
	// Processor is the machine configuration (Table 1).
	Processor = config.Processor
	// PredictorSpec describes a buildable predictor configuration.
	PredictorSpec = bpred.Spec
	// Predictor is a built direction predictor.
	Predictor = bpred.Predictor
	// Benchmark is a calibrated synthetic SPECcpu2000 workload model.
	Benchmark = workload.Benchmark
	// Program is a synthetic static program image.
	Program = program.Program
	// GatingConfig configures pipeline gating (threshold N).
	GatingConfig = gating.Config
	// PPDScenario selects the prediction probe detector timing scenario.
	PPDScenario = ppd.Scenario
	// Harness memoizes experiment runs.
	Harness = experiments.Harness
	// RunConfig sets experiment simulation lengths.
	RunConfig = experiments.RunConfig
	// Run is one experiment outcome.
	Run = experiments.Run
)

// PPD scenarios (Figure 15b).
const (
	// PPDOff disables the prediction probe detector.
	PPDOff = ppd.Off
	// PPDScenario1 suppresses whole predictor/BTB lookups.
	PPDScenario1 = ppd.Scenario1
	// PPDScenario2 cancels lookups after the bitlines (partial savings).
	PPDScenario2 = ppd.Scenario2
)

// The paper's predictor configurations (Section 3.1).
var (
	Bim128    = bpred.Bim128
	Bim4k     = bpred.Bim4k
	Bim8k     = bpred.Bim8k
	Bim16k    = bpred.Bim16k
	GAs4k5    = bpred.GAs4k5
	GAs32k8   = bpred.GAs32k8
	Gsh16k12  = bpred.Gsh16k12
	Gsh32k12  = bpred.Gsh32k12
	Hybrid0   = bpred.Hybrid0
	Hybrid1   = bpred.Hybrid1
	Hybrid2   = bpred.Hybrid2
	Hybrid3   = bpred.Hybrid3
	Hybrid4   = bpred.Hybrid4
	PAs1k2k4  = bpred.PAs1k2k4
	PAs4k16k8 = bpred.PAs4k16k8
)

// PaperConfigs lists the fourteen configurations of Figures 2 and 5-13 in
// the paper's order.
func PaperConfigs() []PredictorSpec { return bpred.PaperConfigs() }

// PredictorByName returns a paper configuration by its figure label, e.g.
// "Gsh_1_16k_12".
func PredictorByName(name string) (PredictorSpec, bool) { return bpred.ConfigByName(name) }

// PredictorByNameStrict is PredictorByName with a descriptive error listing
// every registered configuration name.
func PredictorByNameStrict(name string) (PredictorSpec, error) { return bpred.ByName(name) }

// PredictorNames lists every registered predictor configuration name, sorted.
func PredictorNames() []string { return bpred.ConfigNames() }

// DefaultProcessor returns the paper's Table 1 machine configuration.
func DefaultProcessor() Processor { return config.Default() }

// SPECint2000 returns the ten calibrated integer benchmark models.
func SPECint2000() []Benchmark { return workload.SPECint2000() }

// SPECfp2000 returns the twelve calibrated floating-point benchmark models.
func SPECfp2000() []Benchmark { return workload.SPECfp2000() }

// AllBenchmarks returns all 22 benchmark models.
func AllBenchmarks() []Benchmark { return workload.All() }

// Subset7 returns the seven integer benchmarks Section 4 uses for the
// banking, PPD, and gating studies.
func Subset7() []Benchmark { return workload.Subset7() }

// BenchmarkByName returns a benchmark model, e.g. "164.gzip".
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// NewSimulator builds a simulator for a benchmark under the given options.
// A zero Options value simulates the Table 1 machine with the Alpha 21264
// hybrid predictor.
func NewSimulator(b Benchmark, opt Options) *Simulator {
	return cpu.MustNew(b.Program(), opt)
}

// NewSimulatorForProgram builds a simulator for a custom program image.
func NewSimulatorForProgram(p *Program, opt Options) (*Simulator, error) {
	return cpu.New(p, opt)
}

// Experiment run configurations.
var (
	// DefaultRuns is the full-fidelity experiment configuration.
	DefaultRuns = experiments.Default
	// QuickRuns is a fast configuration for smoke tests.
	QuickRuns = experiments.Quick
)

// NewHarness builds an experiment harness that memoizes programs and runs.
func NewHarness(rc RunConfig) *Harness { return experiments.NewHarness(rc) }

// Confidence estimators for pipeline gating. The paper evaluates
// "both strong"; the JRS and perfect estimators implement its suggested
// future study of predictor-independent confidence estimation.
const (
	// ConfidenceBothStrong requires both hybrid components saturated and
	// agreeing (the paper's estimator; hybrids only).
	ConfidenceBothStrong = gating.EstimatorBothStrong
	// ConfidenceJRS uses a separate resetting-counter table and works with
	// any predictor.
	ConfidenceJRS = gating.EstimatorJRS
	// ConfidencePerfect is the oracle upper bound.
	ConfidencePerfect = gating.EstimatorPerfect
)

// Extension predictor configurations beyond the paper's fourteen (Yeh-Patt /
// McFarling taxonomy points and static baselines).
var (
	GAg14          = bpred.GAg14
	Gsel16k6       = bpred.Gsel16k6
	PAg4k12        = bpred.PAg4k12
	StaticTaken    = bpred.StaticTaken
	StaticNotTaken = bpred.StaticNotTaken
)

// ExtensionConfigs lists the extra predictor organizations.
func ExtensionConfigs() []PredictorSpec { return bpred.ExtensionConfigs() }
